//! E9/E10 — Q&A routing accuracy and the incentive scheme.
//!
//! E9: §2.2 plans to seed the forum and route questions "to people who are
//! likely to be able to answer them". We build synthetic ground truth —
//! the right answerers for a course question are the students who took the
//! course — and measure routing precision.
//!
//! E10: the Yahoo! Answers-style point scheme plus anti-gaming caps.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::unwrap_used)]

use courserank::services::forum::{Forum, Question, RoutingConfig};
use courserank::services::incentives::{Incentives, PointEvent};
use cr_datagen::ScaleConfig;

#[test]
fn e9_routing_precision_on_ground_truth() {
    let (db, _) = cr_datagen::generate(&ScaleConfig::tiny()).unwrap();
    let forum = Forum::new(db.clone()).with_config(RoutingConfig {
        fanout: 5,
        ..RoutingConfig::default()
    });
    // Pick 10 reasonably-popular courses; ground truth = their takers.
    let rs = db
        .database()
        .query_sql(
            "SELECT CourseID, COUNT(*) AS n FROM Enrollments WHERE Status = 'taken' \
             GROUP BY CourseID HAVING COUNT(*) >= 5 ORDER BY n DESC LIMIT 10",
        )
        .unwrap();
    assert!(rs.rows.len() >= 5);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (qi, r) in rs.rows.iter().enumerate() {
        let course = r[0].as_int().unwrap();
        let takers: Vec<i64> = db
            .database()
            .query_sql(&format!(
                "SELECT SuID FROM Enrollments WHERE CourseID = {course} AND Status = 'taken'"
            ))
            .unwrap()
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        let routed = forum
            .route(&Question {
                id: 10_000 + qi as i64,
                asker: None,
                course: Some(course),
                dep: None,
                text: "who can answer this?".into(),
                seeded: false,
            })
            .unwrap();
        for r in &routed {
            total += 1;
            if takers.contains(&r.student) {
                hits += 1;
            }
        }
    }
    let precision = hits as f64 / total as f64;
    assert!(
        precision >= 0.8,
        "routing precision {precision:.2} ({hits}/{total})"
    );
}

#[test]
fn e9_seeded_faqs_fill_the_empty_forum() {
    let (db, stats) = cr_datagen::generate(&ScaleConfig::tiny()).unwrap();
    // The generator seeds 2 FAQs per department (§2.2's plan).
    assert_eq!(stats.questions, 2 * stats.departments);
    let forum = Forum::new(db.clone());
    let unanswered = forum.unanswered().unwrap();
    assert_eq!(unanswered.len(), stats.questions);
    // Department FAQs route to students with department experience.
    let q = Question {
        id: 55_555,
        asker: None,
        course: None,
        dep: Some("CS".into()),
        text: "good intro CS class for non-majors?".into(),
        seeded: true,
    };
    let routed = forum.route(&q).unwrap();
    assert!(!routed.is_empty());
    for r in &routed {
        let n = db
            .database()
            .query_sql(&format!(
                "SELECT COUNT(*) AS n FROM Enrollments e JOIN Courses c \
                 ON e.CourseID = c.CourseID \
                 WHERE e.SuID = {} AND c.DepID = 'CS' AND e.Status = 'taken'",
                r.student
            ))
            .unwrap()
            .scalar()
            .unwrap()
            .as_int()
            .unwrap();
        assert!(
            n > 0,
            "routed to student {} without CS experience",
            r.student
        );
    }
}

#[test]
fn e10_best_answer_flow_awards_points() {
    let (db, _) = cr_datagen::generate(&ScaleConfig::tiny()).unwrap();
    let forum = Forum::new(db.clone());
    let incentives = Incentives::new(db.clone());
    forum
        .ask(&Question {
            id: 77_001,
            asker: Some(1),
            course: Some(1),
            dep: None,
            text: "how is the grading?".into(),
            seeded: false,
        })
        .unwrap();
    forum
        .answer(88_001, 77_001, 2, "curved generously")
        .unwrap();
    forum.mark_best(88_001).unwrap();
    let granted = incentives.award(2, PointEvent::BestAnswer, 700).unwrap();
    assert_eq!(granted, 10); // the Yahoo! Answers number the paper quotes
    assert_eq!(incentives.score(2).unwrap(), 10);
}

#[test]
fn e10_gaming_is_capped_honest_use_is_not() {
    let (db, _) = cr_datagen::generate(&ScaleConfig::tiny()).unwrap();
    let incentives = Incentives::new(db.clone());
    // 10 days of honest use vs 10 days of vote spam.
    for day in 0..10 {
        incentives.award(501, PointEvent::DailyLogin, day).unwrap();
        incentives
            .award(501, PointEvent::PostedComment, day)
            .unwrap();
        for _ in 0..200 {
            incentives
                .award(502, PointEvent::VotedForBest, day)
                .unwrap();
        }
    }
    let honest = incentives.score(501).unwrap();
    let gamer = incentives.score(502).unwrap();
    assert_eq!(honest, 10 * (1 + 2));
    assert_eq!(gamer, 10 * 10); // 10 capped votes/day × 1 point
                                // 2000 attempted spam votes only tripled an honest user's score —
                                // "users often try to boost their reputation"; the caps bound it.
    assert!(gamer <= honest * 4);
}

#[test]
fn e10_leaderboard_is_consistent_with_scores() {
    let (db, _) = cr_datagen::generate(&ScaleConfig::tiny()).unwrap();
    let incentives = Incentives::new(db.clone());
    for (user, n) in [(601i64, 3), (602, 1), (603, 5)] {
        for day in 0..n {
            incentives.award(user, PointEvent::BestAnswer, day).unwrap();
        }
    }
    let lb = incentives.leaderboard(3).unwrap();
    assert_eq!(lb[0].0, 603);
    assert_eq!(lb[0].1, 50);
    for (user, score) in &lb {
        assert_eq!(incentives.score(*user).unwrap(), *score);
    }
}
