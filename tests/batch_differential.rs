//! PR7 differential testing: the vectorized (batch-at-a-time) executor is
//! an *optimization*, not an approximation. For any generated database,
//! query, or FlexRecs workflow, the batched pipeline must return
//! byte-identical results to the row-at-a-time oracle (`batch_size: 0`) —
//! at every batch size, and whether the oracle runs serially or
//! partitioned.
//!
//! Predicates and data are NULL-heavy on purpose: three-valued logic,
//! null join keys, null ratings, and null function arguments are where a
//! vectorized evaluator with validity bitmaps most easily diverges from a
//! row interpreter.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::unwrap_used)]

use cr_flexrecs::compile::compile_and_run_with;
use cr_flexrecs::{CmpOp, Node, RecAgg, RecMethod, RecommendSpec, WfPredicate, Workflow};
use cr_relation::{Database, ExecOptions, RatingsSim, SetSim, TextSim, Value};
use proptest::prelude::*;

/// The batch sizes under test: degenerate (1 row per kernel call), odd
/// (chunk boundaries land mid-table), and the default.
const BATCH_SIZES: &[usize] = &[1, 7, 1024];

fn batched(b: usize) -> ExecOptions {
    ExecOptions {
        batch_size: b,
        ..ExecOptions::default()
    }
}

fn oracle() -> ExecOptions {
    ExecOptions {
        batch_size: 0,
        ..ExecOptions::default()
    }
}

/// The row oracle with forced partitioning (the only path that splits).
fn oracle_par(n: usize) -> ExecOptions {
    ExecOptions {
        parallelism: n,
        min_partition_rows: 1,
        adaptive: false,
        batch_size: 0,
    }
}

// ---------------------------------------------------------------------
// SQL: expression kernels, scans, joins, aggregation
// ---------------------------------------------------------------------

const STRINGS: &[&str] = &["alpha", "Beta", "GAMMA ray", "", "delta delta", "Epsilon"];

/// Two tables with NULL-able columns (0 becomes NULL), a text column for
/// the string kernels, and tombstones so scans straddle deleted slots.
fn build_db(rows1: &[(i64, i64, usize)], rows2: &[(i64, i64)]) -> Database {
    let db = Database::new();
    db.execute_sql("CREATE TABLE T1 (Id INT PRIMARY KEY, G INT, V INT, S TEXT)")
        .unwrap();
    db.execute_sql("CREATE TABLE T2 (Id INT PRIMARY KEY, K INT, W INT)")
        .unwrap();
    let null_or = |x: i64| {
        if x == 0 {
            "NULL".to_owned()
        } else {
            x.to_string()
        }
    };
    for (i, &(g, v, s)) in rows1.iter().enumerate() {
        db.execute_sql(&format!(
            "INSERT INTO T1 VALUES ({i}, {}, {v}, '{}')",
            null_or(g),
            STRINGS[s % STRINGS.len()]
        ))
        .unwrap();
    }
    for (i, &(k, w)) in rows2.iter().enumerate() {
        db.execute_sql(&format!("INSERT INTO T2 VALUES ({i}, {}, {w})", null_or(k)))
            .unwrap();
    }
    db.execute_sql("DELETE FROM T1 WHERE V = 3").unwrap();
    db
}

/// Queries chosen to hit every kernel family: comparison, arithmetic,
/// logic with NULLs, LIKE / IN / BETWEEN / IS NULL, string and math
/// scalar functions, joins (equi and outer), aggregation, sort + limit.
const QUERIES: &[&str] = &[
    "SELECT * FROM T1",
    "SELECT Id, V + G * 2, -V, ABS(V), ROUND(V / 3.0, 1) FROM T1",
    "SELECT COALESCE(G, -1), G IS NULL, NOT (V > 0) FROM T1",
    "SELECT LOWER(S), UPPER(S), LENGTH(S), SUBSTR(S, 2, 3), CONCAT(S, '-', G) FROM T1",
    "SELECT Id FROM T1 WHERE S LIKE '%a%' OR G IN (1, 2, NULL) AND V BETWEEN -5 AND 5",
    "SELECT Id FROM T1 WHERE G IS NULL OR (G >= 2 AND NOT (V < 0))",
    "SELECT T1.Id, T1.V, T2.W FROM T1 JOIN T2 ON T1.G = T2.K",
    "SELECT T1.Id, T2.Id FROM T1 LEFT JOIN T2 ON T1.G = T2.K WHERE T1.V <> 1",
    "SELECT G, COUNT(*) AS n, SUM(V) AS s, MIN(V) AS lo, MAX(V) AS hi, AVG(V) AS m \
     FROM T1 GROUP BY G HAVING COUNT(*) >= 1",
    "SELECT Id, V FROM T1 ORDER BY V DESC, Id LIMIT 5",
    "SELECT Id, V FROM T1 WHERE V > -100 ORDER BY G, Id LIMIT 4 OFFSET 2",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_sql_matches_row_oracle(
        rows1 in proptest::collection::vec((0i64..6, -20i64..20, 0usize..6), 0..120),
        rows2 in proptest::collection::vec((0i64..6, -20i64..20), 0..80),
        parallelism in 2usize..6,
    ) {
        let db = build_db(&rows1, &rows2);
        for q in QUERIES {
            let row = db.query_sql_with(q, &oracle()).unwrap();
            let row_par = db.query_sql_with(q, &oracle_par(parallelism)).unwrap();
            prop_assert_eq!(&row, &row_par, "row oracle diverged under partitioning: {}", q);
            for &b in BATCH_SIZES {
                let vec = db.query_sql_with(q, &batched(b)).unwrap();
                prop_assert_eq!(&row, &vec, "batch_size={} diverged on {}", b, q);
            }
        }
    }
}

// ---------------------------------------------------------------------
// FlexRecs workflows: Extend and every Recommend method
// ---------------------------------------------------------------------

const NAMES: &[&str] = &[
    "intro to databases",
    "advanced databases",
    "american history",
    "history of art",
    "systems programming",
    "intro to programming",
];

/// Users (nullable Age), fixed Items, and a ratings relation whose UIds
/// may dangle and whose scores may be NULL.
fn build_social_db(users: &[i64], ratings: &[(i64, i64, i64)]) -> Database {
    let db = Database::new();
    db.execute_sql("CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT, Age INT)")
        .unwrap();
    db.execute_sql("CREATE TABLE Items (IId INT PRIMARY KEY, Label TEXT)")
        .unwrap();
    db.execute_sql("CREATE TABLE Ratings (RId INT PRIMARY KEY, UId INT, IId INT, Score INT)")
        .unwrap();
    let null_or = |x: i64| {
        if x == 0 {
            "NULL".to_owned()
        } else {
            x.to_string()
        }
    };
    for (i, &age) in users.iter().enumerate() {
        db.execute_sql(&format!(
            "INSERT INTO Users VALUES ({i}, '{}', {})",
            NAMES[i % NAMES.len()],
            null_or(age)
        ))
        .unwrap();
    }
    for (i, name) in NAMES.iter().enumerate() {
        db.execute_sql(&format!("INSERT INTO Items VALUES ({i}, '{name}')"))
            .unwrap();
    }
    for (i, &(uid, iid, score)) in ratings.iter().enumerate() {
        db.execute_sql(&format!(
            "INSERT INTO Ratings VALUES ({i}, {}, {iid}, {})",
            null_or(uid),
            null_or(score)
        ))
        .unwrap();
    }
    db
}

fn src(table: &str) -> Node {
    Node::Source {
        table: table.to_owned(),
    }
}

fn maybe_select(input: Node, pred: Option<WfPredicate>) -> Node {
    match pred {
        Some(predicate) => Node::Select {
            input: Box::new(input),
            predicate,
        },
        None => input,
    }
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::NotEq),
        Just(CmpOp::Lt),
        Just(CmpOp::LtEq),
        Just(CmpOp::Gt),
        Just(CmpOp::GtEq),
    ]
}

/// A predicate over the given scalar columns, with NULL literals mixed in
/// to exercise the two-valued null-safe lowering, and And/Or nesting.
fn arb_pred(columns: &'static [&'static str]) -> impl Strategy<Value = WfPredicate> {
    let leaf = (
        proptest::sample::select(columns),
        arb_op(),
        (-4i64..10).prop_map(|v| if v < -2 { Value::Null } else { Value::Int(v) }),
    )
        .prop_map(|(c, op, v)| WfPredicate::cmp(c, op, v));
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(WfPredicate::And),
            proptest::collection::vec(inner, 0..3).prop_map(WfPredicate::Or),
        ]
    })
}

fn arb_users() -> impl Strategy<Value = Node> {
    proptest::option::of(arb_pred(&["UId", "Age"])).prop_map(|p| maybe_select(src("Users"), p))
}

/// ε(Users): each user extended with the items they rated — a Set
/// attribute, or a Ratings attribute when `rating` is set.
fn arb_extended(rating: bool) -> impl Strategy<Value = Node> {
    arb_users().prop_map(move |input| Node::Extend {
        input: Box::new(input),
        related_table: "Ratings".to_owned(),
        fk_column: "UId".to_owned(),
        local_key: "UId".to_owned(),
        key_column: "IId".to_owned(),
        rating_column: rating.then(|| "Score".to_owned()),
        as_name: "R".to_owned(),
    })
}

fn arb_scalar_agg() -> impl Strategy<Value = RecAgg> {
    prop_oneof![
        Just(RecAgg::Avg),
        Just(RecAgg::Sum),
        Just(RecAgg::Max),
        Just(RecAgg::WeightedAvg {
            weight_attr: "Age".to_owned(),
        }),
    ]
}

fn finish_spec(spec: RecommendSpec, agg: RecAgg, k: Option<usize>, excl: bool) -> RecommendSpec {
    let spec = spec.with_agg(agg);
    match k {
        Some(k) => spec.top_k(k),
        None => spec,
    }
    .pipe_excl(excl)
}

/// Small helper so the strategy maps stay readable.
trait SpecExt {
    fn pipe_excl(self, excl: bool) -> RecommendSpec;
}
impl SpecExt for RecommendSpec {
    fn pipe_excl(self, excl: bool) -> RecommendSpec {
        if excl {
            self.excluding_seen("UId", "R")
        } else {
            self
        }
    }
}

/// Relational shapes (project / join / union / limit) plus recommends over
/// every method family: set similarity, ratings similarity, rating lookup,
/// and text similarity.
fn arb_workflow() -> impl Strategy<Value = Workflow> {
    let project = (
        arb_users(),
        proptest::sample::subsequence(vec!["UId", "Name", "Age"], 1..=3),
    )
        .prop_map(|(input, cols)| Node::Project {
            input: Box::new(input),
            columns: cols.into_iter().map(str::to_owned).collect(),
        });
    let join = (
        arb_users(),
        proptest::option::of(arb_pred(&["IId", "Score"])),
    )
        .prop_map(|(left, rpred)| Node::Join {
            left: Box::new(left),
            right: Box::new(maybe_select(src("Ratings"), rpred)),
            left_col: "UId".to_owned(),
            right_col: "UId".to_owned(),
        });
    let union = (arb_users(), arb_users()).prop_map(|(left, right)| Node::Union {
        left: Box::new(left),
        right: Box::new(right),
    });
    let knobs = || {
        (
            arb_scalar_agg(),
            proptest::option::of(1usize..6),
            any::<bool>(),
        )
    };
    let set_rec = (
        arb_extended(false),
        arb_extended(false),
        prop_oneof![
            Just(SetSim::Jaccard),
            Just(SetSim::Dice),
            Just(SetSim::Overlap),
            Just(SetSim::Cosine),
        ],
        knobs(),
    )
        .prop_map(
            |(target, comparator, sim, (agg, k, excl))| Node::Recommend {
                target: Box::new(target),
                comparator: Box::new(comparator),
                spec: finish_spec(
                    RecommendSpec::new("R", "R", RecMethod::Set(sim)),
                    agg,
                    k,
                    excl,
                ),
            },
        );
    let ratings_rec = (
        arb_extended(true),
        arb_extended(true),
        prop_oneof![
            Just(RatingsSim::InverseEuclidean),
            Just(RatingsSim::Pearson),
            Just(RatingsSim::Cosine),
        ],
        1usize..3,
        knobs(),
    )
        .prop_map(
            |(target, comparator, sim, min_common, (agg, k, excl))| Node::Recommend {
                target: Box::new(target),
                comparator: Box::new(comparator),
                spec: finish_spec(
                    RecommendSpec::new("R", "R", RecMethod::Ratings { sim, min_common }),
                    agg,
                    k,
                    excl,
                ),
            },
        );
    let lookup_rec = (
        proptest::option::of(arb_pred(&["IId"])),
        arb_extended(true),
        knobs(),
    )
        .prop_map(|(tpred, comparator, (agg, k, _))| Node::Recommend {
            target: Box::new(maybe_select(src("Items"), tpred)),
            comparator: Box::new(comparator),
            spec: finish_spec(
                RecommendSpec::new("IId", "R", RecMethod::RatingLookup),
                agg,
                k,
                false,
            ),
        });
    let text_rec = (
        arb_users(),
        arb_users(),
        prop_oneof![
            Just(TextSim::WordJaccard),
            Just(TextSim::TrigramJaccard),
            Just(TextSim::Levenshtein),
        ],
        knobs(),
    )
        .prop_map(|(target, comparator, sim, (agg, k, _))| Node::Recommend {
            target: Box::new(target),
            comparator: Box::new(comparator),
            spec: finish_spec(
                RecommendSpec::new("Name", "Name", RecMethod::Text(sim)),
                agg,
                k,
                false,
            ),
        });
    prop_oneof![
        project,
        join,
        union,
        set_rec,
        ratings_rec,
        lookup_rec,
        text_rec
    ]
    .prop_map(|root| Workflow::new("prop", root))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn batched_workflows_match_row_oracle(
        users in proptest::collection::vec(0i64..7, 0..14),
        ratings in proptest::collection::vec((0i64..18, 0i64..6, 0i64..6), 0..40),
        wf in arb_workflow(),
        parallelism in 2usize..6,
    ) {
        let db = build_social_db(&users, &ratings);
        let catalog = db.catalog();
        let row = compile_and_run_with(&wf, &catalog, &oracle());
        let row_par = compile_and_run_with(&wf, &catalog, &oracle_par(parallelism));
        match (&row, &row_par) {
            (Ok(r), Ok(p)) => prop_assert_eq!(
                &r.result, &p.result,
                "row oracle diverged under partitioning\n{}", wf.explain()
            ),
            (Err(_), Err(_)) => {}
            _ => prop_assert!(false, "serial/parallel oracle error disagreement\n{}", wf.explain()),
        }
        for &b in BATCH_SIZES {
            let vec = compile_and_run_with(&wf, &catalog, &batched(b));
            match (&row, &vec) {
                (Ok(r), Ok(v)) => prop_assert_eq!(
                    &r.result, &v.result,
                    "batch_size={} diverged\n{}", b, wf.explain()
                ),
                // Both executors must agree on rejection too.
                (Err(_), Err(_)) => {}
                _ => prop_assert!(
                    false,
                    "one path errored at batch_size={}: row {:?}, batched {:?}\n{}",
                    b,
                    row.as_ref().err(),
                    vec.as_ref().err(),
                    wf.explain()
                ),
            }
        }
    }
}
