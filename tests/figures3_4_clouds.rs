//! E2/E3 — Figures 3 and 4: data-cloud search and refinement.
//!
//! Figure 3: searching "American" returns 1160 of 18,605 courses (~6%)
//! with a cloud of related concepts ("Latin American", "Indians",
//! "politics"). Figure 4: clicking "African American" narrows to 123
//! (~9.4× reduction). We reproduce the *shape* on a 10%-scale synthetic
//! corpus: a broad term hits a few percent to a quarter of the corpus, the
//! cloud proposes related theme terms (not the query itself, not
//! background noise), and cloud-term refinement narrows results by an
//! order of magnitude.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::unwrap_used)]

use courserank::CourseRank;
use cr_datagen::ScaleConfig;

fn app() -> CourseRank {
    let (db, _) = cr_datagen::generate(&ScaleConfig::scaled(0.1)).unwrap();
    CourseRank::assemble_with_threads(db, 2).unwrap()
}

#[test]
fn figure3_broad_search_with_cloud() {
    let app = app();
    let (hits, results, cloud) = app
        .search()
        .search_with_cloud("american", None, 10)
        .unwrap();
    let corpus = app.db().count("Courses").unwrap() as usize;

    // A broad bridge term hits a noticeable but minority slice.
    assert!(results.total > 20, "too few matches: {}", results.total);
    assert!(
        results.total < corpus / 2,
        "matches {}/{corpus} — not selective enough",
        results.total
    );
    assert_eq!(hits.len(), 10);

    // The cloud is non-trivial and does not echo the query.
    assert!(cloud.terms.len() >= 10, "{:?}", cloud.term_strings());
    assert!(!cloud.term_strings().contains(&"american"));
    // It surfaces theme-related refinements the paper shows (politics,
    // culture, history, latin …).
    let terms = cloud.term_strings().join(" ");
    let related = ["politic", "culture", "history", "latin", "race", "identity"];
    let found = related.iter().filter(|w| terms.contains(**w)).count();
    assert!(found >= 3, "expected related concepts in cloud: {terms}");
}

#[test]
fn figure4_refinement_narrows_by_an_order_of_magnitude() {
    let app = app();
    let (_, broad, cloud) = app
        .search()
        .search_with_cloud("american", None, 10)
        .unwrap();
    // Pick the paper's kind of refinement: a bigram if present, else the
    // top term.
    let refine = cloud
        .terms
        .iter()
        .find(|t| t.term.contains(' '))
        .or_else(|| cloud.terms.first())
        .map(|t| t.term.clone())
        .expect("cloud has terms");
    let (_, narrow, cloud2) = app
        .search()
        .search_with_cloud("american", Some(&refine), 10)
        .unwrap();
    assert!(narrow.total > 0, "refinement {refine:?} must keep results");
    assert!(
        narrow.total * 3 <= broad.total,
        "refinement should narrow ≥3x: {} -> {} via {refine:?}",
        broad.total,
        narrow.total
    );
    // "The cloud is updated accordingly to reflect the new, refined,
    // results."
    assert_ne!(cloud.term_strings(), cloud2.term_strings());
}

#[test]
fn every_cloud_term_is_a_valid_refinement() {
    let app = app();
    let (_, broad, cloud) = app.search().search_with_cloud("history", None, 10).unwrap();
    assert!(broad.total > 0);
    for t in cloud.terms.iter().take(10) {
        let (_, narrowed, _) = app
            .search()
            .search_with_cloud("history", Some(&t.term), 10)
            .unwrap();
        assert!(
            narrowed.total > 0,
            "cloud term {:?} produced zero results",
            t.term
        );
        assert!(narrowed.total <= broad.total);
    }
}

#[test]
fn search_reaches_comment_only_matches() {
    // §3.1: "if there are comments that mention 'American', the respective
    // courses will appear (in some position) in the results". Insert a
    // sentinel comment with a unique word on an unrelated course.
    let (db, _) = cr_datagen::generate(&ScaleConfig::tiny()).unwrap();
    db.insert_comment(&courserank::db::Comment {
        id: 999_999,
        student: 1,
        course: 42,
        quarter: courserank::model::Quarter::new(2008, courserank::model::Term::Autumn),
        text: "mentions zanzibar exactly once".into(),
        rating: 4.0,
        date: 0,
    })
    .unwrap();
    let app = CourseRank::assemble_with_threads(db, 1).unwrap();
    let (hits, results) = app.search().search("zanzibar", 10).unwrap();
    assert_eq!(results.total, 1);
    assert_eq!(hits[0].course, 42);
}

#[test]
fn clouds_display_surface_forms_not_stems() {
    let app = app();
    let (_, _, cloud) = app
        .search()
        .search_with_cloud("american", None, 10)
        .unwrap();
    for t in &cloud.terms {
        // display forms come from real tokens, so a stem like "politic"
        // must be shown as an actual word ("politics").
        if t.term == "politic" {
            assert_eq!(t.display, "politics");
        }
        assert!(!t.display.is_empty());
    }
}
