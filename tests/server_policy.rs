//! Principal-aware disclosure enforcement through the live server path
//! (PR10 acceptance): the same SQL frame is denied or served purely by
//! the principal announced in the v3 handshake.
//!
//! Each check runs over the in-process pipe transport — real framing,
//! real handshake, real snapshot dispatch — so the flow analysis is
//! exercised exactly where production queries cross it.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use cr_server::client::{self, Client};
use cr_server::protocol::{ErrorCode, Response};
use cr_server::server::{Server, ServerConfig};
use cr_server::transport;

fn tiny_server() -> Arc<Server> {
    let (db, _) = cr_datagen::generate(&cr_datagen::ScaleConfig::tiny()).unwrap();
    let app = courserank::CourseRank::assemble(db).unwrap();
    Server::new(app, ServerConfig::default()).unwrap()
}

/// Open a principal-scoped client against `server` over a fresh pipe.
fn connect(server: &Arc<Server>, name: &str, principal: &str) -> Client<transport::PipeConn> {
    let (local, remote) = transport::pipe();
    let srv = Arc::clone(server);
    std::thread::spawn(move || srv.handle_conn(remote));
    Client::handshake_as(local, name, principal).unwrap()
}

fn deny_message(resp: &Response) -> String {
    match resp {
        Response::Error { code, message } => {
            assert_eq!(*code, ErrorCode::PolicyDenied, "{message}");
            message.clone()
        }
        other => panic!("expected PolicyDenied, got {other:?}"),
    }
}

#[test]
fn student_grade_scan_denied_staff_succeeds() {
    let server = tiny_server();
    let query = "SELECT SuID, Grade FROM Enrollments";

    // The acceptance criterion: a grade-data scan from a student session
    // is rejected with P001 through the live server path...
    let mut student = connect(&server, "e2e-student", "student:2");
    let resp = student.sql(query).unwrap();
    assert!(client::is_policy_denied(&resp), "{resp:?}");
    let msg = deny_message(&resp);
    assert!(msg.contains("P001"), "expected P001 in: {msg}");
    assert!(msg.contains("student:2"), "principal named in: {msg}");

    // ...while the same query from staff succeeds.
    let mut staff = connect(&server, "e2e-staff", "staff");
    match staff.sql(query).unwrap() {
        Response::Rows { rows, .. } => assert!(!rows.is_empty()),
        other => panic!("unexpected: {other:?}"),
    }

    student.goodbye().unwrap();
    staff.goodbye().unwrap();
}

#[test]
fn student_reads_own_grades_but_not_others() {
    let server = tiny_server();
    let mut student = connect(&server, "self-access", "student:2");

    // Self-access declassifies: the per-user Grade column is visible
    // when the plan provably filters to the session's own rows.
    match student
        .sql("SELECT Grade FROM Enrollments WHERE SuID = 2")
        .unwrap()
    {
        Response::Rows { columns, .. } => assert_eq!(columns, vec!["Grade".to_owned()]),
        other => panic!("unexpected: {other:?}"),
    }

    // A different student's rows stay sealed for this principal.
    let resp = student
        .sql("SELECT Grade FROM Enrollments WHERE SuID = 3")
        .unwrap();
    assert!(client::is_policy_denied(&resp), "{resp:?}");

    student.goodbye().unwrap();
}

#[test]
fn restricted_telemetry_sealed_from_non_staff() {
    let server = tiny_server();

    // Slow-query capture carries raw SQL text (Restricted): students
    // and faculty are turned away at the scan, staff reads it fine.
    let query = "SELECT label FROM cr_stat_slow_queries";
    for principal in ["student:2", "faculty"] {
        let mut c = connect(&server, "telemetry-probe", principal);
        let resp = c.sql(query).unwrap();
        assert!(client::is_policy_denied(&resp), "{principal}: {resp:?}");
        assert!(deny_message(&resp).contains("P005"));
        c.goodbye().unwrap();
    }
    let mut staff = connect(&server, "telemetry-staff", "staff");
    assert!(matches!(staff.sql(query).unwrap(), Response::Rows { .. }));

    // Aggregate counters are community-visible: a student may read them.
    let mut student = connect(&server, "counter-probe", "student:2");
    assert!(matches!(
        student.sql("SELECT name FROM cr_stat_counters").unwrap(),
        Response::Rows { .. }
    ));
    // But the server's who-is-connected table is operator-only.
    let resp = student.sql("SELECT Client FROM cr_stat_sessions").unwrap();
    assert!(client::is_policy_denied(&resp), "{resp:?}");

    student.goodbye().unwrap();
    staff.goodbye().unwrap();
}

#[test]
fn public_and_community_reads_flow_for_everyone() {
    let server = tiny_server();

    // Public catalog data serves even an anonymous session...
    let mut anon = connect(&server, "anon", "anonymous");
    match anon
        .sql("SELECT Title FROM Courses WHERE CourseID = 1")
        .unwrap()
    {
        Response::Rows { rows, .. } => assert_eq!(rows.len(), 1),
        other => panic!("unexpected: {other:?}"),
    }
    // ...but community content (comments) needs a signed-in principal.
    let resp = anon.sql("SELECT Text FROM Comments").unwrap();
    assert!(client::is_policy_denied(&resp), "{resp:?}");

    let mut student = connect(&server, "community", "student:5");
    assert!(matches!(
        student.sql("SELECT Text FROM Comments").unwrap(),
        Response::Rows { .. }
    ));

    anon.goodbye().unwrap();
    student.goodbye().unwrap();
}

#[test]
fn k_aggregation_declassifies_grades_over_the_wire() {
    let server = tiny_server();
    let mut student = connect(&server, "agg", "student:2");

    // Grade distributions above the k-threshold are community-visible
    // (the paper's aggregation rule), even though raw grades are not.
    let agg = "SELECT Grade, COUNT(DISTINCT SuID) AS n FROM Enrollments \
               GROUP BY Grade HAVING COUNT(DISTINCT SuID) >= 5";
    match student.sql(agg).unwrap() {
        Response::Rows { columns, .. } => {
            assert_eq!(columns, vec!["Grade".to_owned(), "n".to_owned()]);
        }
        other => panic!("unexpected: {other:?}"),
    }

    // Below the threshold the same shape is refused (P003).
    let small = "SELECT Grade, COUNT(DISTINCT SuID) AS n FROM Enrollments \
                 GROUP BY Grade HAVING COUNT(DISTINCT SuID) >= 2";
    let resp = student.sql(small).unwrap();
    assert!(client::is_policy_denied(&resp), "{resp:?}");
    assert!(deny_message(&resp).contains("P003"));

    student.goodbye().unwrap();
}

#[test]
fn unknown_principal_rejected_at_handshake() {
    let server = tiny_server();
    let (local, remote) = transport::pipe();
    let srv = Arc::clone(&server);
    std::thread::spawn(move || srv.handle_conn(remote));
    let err = match Client::handshake_as(local, "bad", "wizard") {
        Err(e) => e,
        Ok(_) => panic!("handshake with unknown principal succeeded"),
    };
    assert!(err.to_string().contains("BadRequest"), "{err}");
    assert_eq!(server.sessions().active(), 0);
}
