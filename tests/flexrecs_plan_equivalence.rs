//! A1 — differential testing for the unified IR: arbitrary FlexRecs
//! workflows, compiled onto the `LogicalPlan` pipeline, must return
//! byte-identical results to the reference interpreter — serially and at
//! every parallelism level.
//!
//! The generated fixtures deliberately carry **no secondary indexes**:
//! pushed-down scan filters then always execute as sequential scans in
//! slot order, the same order the interpreter's `Source` produces, so any
//! divergence is a semantics bug rather than an access-path ordering
//! artifact. Ratings are integers so weighted aggregates are exact f64
//! sums and merge order cannot perturb them.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::unwrap_used)]

use cr_flexrecs::compile::{compile_and_run, compile_and_run_with};
use cr_flexrecs::{execute, CmpOp, Node, RecAgg, RecMethod, RecommendSpec, WfPredicate, Workflow};
use cr_relation::{Database, ExecOptions, RatingsSim, SetSim, TextSim, Value};
use proptest::prelude::*;

fn par(n: usize) -> ExecOptions {
    ExecOptions {
        parallelism: n,
        // Force partitioning even on tiny generated tables and 1-CPU hosts;
        // batch_size: 0 pins the row executor, the only path that partitions.
        min_partition_rows: 1,
        adaptive: false,
        batch_size: 0,
    }
}

const NAMES: &[&str] = &[
    "intro to databases",
    "advanced databases",
    "american history",
    "history of art",
    "systems programming",
    "intro to programming",
];

/// Users (nullable Age, tombstones at Age = 6), fixed Items, and a ratings
/// relation whose UIds may dangle and whose scores may be NULL. No
/// secondary indexes — see the module comment.
fn build_db(users: &[i64], ratings: &[(i64, i64, i64)]) -> Database {
    let db = Database::new();
    db.execute_sql("CREATE TABLE Users (UId INT PRIMARY KEY, Name TEXT, Age INT)")
        .unwrap();
    db.execute_sql("CREATE TABLE Items (IId INT PRIMARY KEY, Label TEXT)")
        .unwrap();
    db.execute_sql("CREATE TABLE Ratings (RId INT PRIMARY KEY, UId INT, IId INT, Score INT)")
        .unwrap();
    let null_or = |x: i64| {
        if x == 0 {
            "NULL".to_owned()
        } else {
            x.to_string()
        }
    };
    for (i, &age) in users.iter().enumerate() {
        db.execute_sql(&format!(
            "INSERT INTO Users VALUES ({i}, '{}', {})",
            NAMES[i % NAMES.len()],
            null_or(age)
        ))
        .unwrap();
    }
    for (i, name) in NAMES.iter().enumerate() {
        db.execute_sql(&format!("INSERT INTO Items VALUES ({i}, '{name}')"))
            .unwrap();
    }
    for (i, &(uid, iid, score)) in ratings.iter().enumerate() {
        db.execute_sql(&format!(
            "INSERT INTO Ratings VALUES ({i}, {}, {iid}, {})",
            null_or(uid),
            null_or(score)
        ))
        .unwrap();
    }
    // Tombstones so scans straddle deleted slots.
    db.execute_sql("DELETE FROM Users WHERE Age = 6").unwrap();
    db
}

fn src(table: &str) -> Node {
    Node::Source {
        table: table.to_owned(),
    }
}

fn maybe_select(input: Node, pred: Option<WfPredicate>) -> Node {
    match pred {
        Some(predicate) => Node::Select {
            input: Box::new(input),
            predicate,
        },
        None => input,
    }
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::NotEq),
        Just(CmpOp::Lt),
        Just(CmpOp::LtEq),
        Just(CmpOp::Gt),
        Just(CmpOp::GtEq),
    ]
}

/// A predicate over the given scalar columns, with NULL literals mixed in
/// to exercise the two-valued null-safe lowering, and And/Or nesting.
fn arb_pred(columns: &'static [&'static str]) -> impl Strategy<Value = WfPredicate> {
    let leaf = (
        proptest::sample::select(columns),
        arb_op(),
        // Values below the data range become NULL literals, exercising the
        // two-valued null-safe lowering.
        (-4i64..10).prop_map(|v| if v < -2 { Value::Null } else { Value::Int(v) }),
    )
        .prop_map(|(c, op, v)| WfPredicate::cmp(c, op, v));
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..3).prop_map(WfPredicate::And),
            proptest::collection::vec(inner, 0..3).prop_map(WfPredicate::Or),
        ]
    })
}

/// Users, optionally filtered on its scalar columns.
fn arb_users() -> impl Strategy<Value = Node> {
    proptest::option::of(arb_pred(&["UId", "Age"])).prop_map(|p| maybe_select(src("Users"), p))
}

/// ε(Users): each user extended with the items they rated — a Set
/// attribute, or a Ratings attribute when `rating` is set.
fn arb_extended(rating: bool) -> impl Strategy<Value = Node> {
    arb_users().prop_map(move |input| Node::Extend {
        input: Box::new(input),
        related_table: "Ratings".to_owned(),
        fk_column: "UId".to_owned(),
        local_key: "UId".to_owned(),
        key_column: "IId".to_owned(),
        rating_column: rating.then(|| "Score".to_owned()),
        as_name: "R".to_owned(),
    })
}

fn arb_scalar_agg() -> impl Strategy<Value = RecAgg> {
    prop_oneof![
        Just(RecAgg::Avg),
        Just(RecAgg::Sum),
        Just(RecAgg::Max),
        // Age is nullable: NULL weights must count as 0 on both paths.
        Just(RecAgg::WeightedAvg {
            weight_attr: "Age".to_owned(),
        }),
    ]
}

fn finish_spec(
    spec: RecommendSpec,
    agg: RecAgg,
    k: Option<usize>,
    exclude: Option<(&str, &str)>,
) -> RecommendSpec {
    let spec = spec.with_agg(agg);
    let spec = match k {
        Some(k) => spec.top_k(k),
        None => spec,
    };
    match exclude {
        Some((t, c)) => spec.excluding_seen(t, c),
        None => spec,
    }
}

/// Purely relational shapes: project / join / union / limit over the flat
/// tables.
fn arb_relational() -> impl Strategy<Value = Node> {
    let project = (
        arb_users(),
        proptest::sample::subsequence(vec!["UId", "Name", "Age"], 1..=3),
    )
        .prop_map(|(input, cols)| Node::Project {
            input: Box::new(input),
            columns: cols.into_iter().map(str::to_owned).collect(),
        });
    // The join duplicates the UId column name; predicates above it must
    // resolve to the first match identically on both paths.
    let join = (
        arb_users(),
        proptest::option::of(arb_pred(&["IId", "Score"])),
        proptest::option::of(arb_pred(&["UId", "Age", "Score"])),
    )
        .prop_map(|(left, rpred, above)| {
            let joined = Node::Join {
                left: Box::new(left),
                right: Box::new(maybe_select(src("Ratings"), rpred)),
                left_col: "UId".to_owned(),
                right_col: "UId".to_owned(),
            };
            maybe_select(joined, above)
        });
    let union = (arb_users(), arb_users()).prop_map(|(left, right)| Node::Union {
        left: Box::new(left),
        right: Box::new(right),
    });
    (
        prop_oneof![project, join, union],
        proptest::option::of(0usize..8),
    )
        .prop_map(|(input, limit)| match limit {
            Some(k) => Node::Limit {
                input: Box::new(input),
                k,
            },
            None => input,
        })
}

/// Recommend over nested attributes: user-to-user by item sets or rating
/// vectors, or item scores looked up in similar users' ratings.
fn arb_recommend() -> impl Strategy<Value = Node> {
    let set_sim = prop_oneof![
        Just(SetSim::Jaccard),
        Just(SetSim::Dice),
        Just(SetSim::Overlap),
        Just(SetSim::Cosine),
    ];
    let ratings_sim = prop_oneof![
        Just(RatingsSim::InverseEuclidean),
        Just(RatingsSim::Pearson),
        Just(RatingsSim::Cosine),
    ];
    let text_sim = prop_oneof![
        Just(TextSim::WordJaccard),
        Just(TextSim::TrigramJaccard),
        Just(TextSim::Levenshtein),
    ];
    let knobs = || {
        (
            arb_scalar_agg(),
            proptest::option::of(1usize..6),
            any::<bool>(),
        )
    };
    let set_rec = (arb_extended(false), arb_extended(false), set_sim, knobs()).prop_map(
        |(target, comparator, sim, (agg, k, excl))| Node::Recommend {
            target: Box::new(target),
            comparator: Box::new(comparator),
            spec: finish_spec(
                RecommendSpec::new("R", "R", RecMethod::Set(sim)),
                agg,
                k,
                excl.then_some(("UId", "R")),
            ),
        },
    );
    let ratings_rec = (
        arb_extended(true),
        arb_extended(true),
        ratings_sim,
        1usize..3,
        knobs(),
    )
        .prop_map(
            |(target, comparator, sim, min_common, (agg, k, excl))| Node::Recommend {
                target: Box::new(target),
                comparator: Box::new(comparator),
                spec: finish_spec(
                    RecommendSpec::new("R", "R", RecMethod::Ratings { sim, min_common }),
                    agg,
                    k,
                    excl.then_some(("UId", "R")),
                ),
            },
        );
    let lookup_rec = (
        proptest::option::of(arb_pred(&["IId"])),
        arb_extended(true),
        knobs(),
    )
        .prop_map(|(tpred, comparator, (agg, k, excl))| Node::Recommend {
            target: Box::new(maybe_select(src("Items"), tpred)),
            comparator: Box::new(comparator),
            spec: finish_spec(
                RecommendSpec::new("IId", "R", RecMethod::RatingLookup),
                agg,
                k,
                excl.then_some(("IId", "R")),
            ),
        });
    let text_rec = (arb_users(), arb_users(), text_sim, knobs()).prop_map(
        |(target, comparator, sim, (agg, k, _))| Node::Recommend {
            target: Box::new(target),
            comparator: Box::new(comparator),
            spec: finish_spec(
                RecommendSpec::new("Name", "Name", RecMethod::Text(sim)),
                agg,
                k,
                None,
            ),
        },
    );
    prop_oneof![set_rec, ratings_rec, lookup_rec, text_rec]
}

/// Figure 5(b)'s nested shape with random knobs: a lower ratings-similarity
/// recommend feeding an upper rating-lookup recommend, optionally weighted
/// by the lower score.
fn arb_nested_cf() -> impl Strategy<Value = Node> {
    (
        proptest::option::of(arb_pred(&["UId", "Age"])),
        prop_oneof![
            Just(RatingsSim::InverseEuclidean),
            Just(RatingsSim::Pearson),
            Just(RatingsSim::Cosine),
        ],
        1usize..3,
        1usize..5,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(cpred, sim, min_common, k, weighted, excl)| {
            let lower = Node::Recommend {
                target: Box::new(Node::Extend {
                    input: Box::new(src("Users")),
                    related_table: "Ratings".to_owned(),
                    fk_column: "UId".to_owned(),
                    local_key: "UId".to_owned(),
                    key_column: "IId".to_owned(),
                    rating_column: Some("Score".to_owned()),
                    as_name: "R".to_owned(),
                }),
                comparator: Box::new(maybe_select(
                    Node::Extend {
                        input: Box::new(src("Users")),
                        related_table: "Ratings".to_owned(),
                        fk_column: "UId".to_owned(),
                        local_key: "UId".to_owned(),
                        key_column: "IId".to_owned(),
                        rating_column: Some("Score".to_owned()),
                        as_name: "R".to_owned(),
                    },
                    cpred,
                )),
                spec: RecommendSpec::new("R", "R", RecMethod::Ratings { sim, min_common })
                    .top_k(k)
                    .score_as("sim"),
            };
            let agg = if weighted {
                RecAgg::WeightedAvg {
                    weight_attr: "sim".to_owned(),
                }
            } else {
                RecAgg::Avg
            };
            Node::Recommend {
                target: Box::new(src("Items")),
                comparator: Box::new(lower),
                spec: finish_spec(
                    RecommendSpec::new("IId", "R", RecMethod::RatingLookup),
                    agg,
                    Some(3),
                    excl.then_some(("IId", "R")),
                ),
            }
        })
}

fn arb_workflow() -> impl Strategy<Value = Workflow> {
    prop_oneof![arb_relational(), arb_recommend(), arb_nested_cf()]
        .prop_map(|root| Workflow::new("prop", root))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core property: compile → optimize → shared executor produces
    /// byte-identical output to the reference interpreter, serially and
    /// at the given parallelism.
    #[test]
    fn plan_matches_interpreter(
        users in proptest::collection::vec(0i64..7, 0..16),
        ratings in proptest::collection::vec((0i64..20, 0i64..6, 0i64..6), 0..48),
        wf in arb_workflow(),
        parallelism in 2usize..6,
    ) {
        let db = build_db(&users, &ratings);
        let catalog = db.catalog();
        let direct = execute(&wf, &catalog);
        let serial = compile_and_run(&wf, &catalog);
        match (&direct, &serial) {
            (Ok(d), Ok(s)) => {
                prop_assert_eq!(d, &s.result, "serial divergence\n{}", wf.explain());
                let parallel = compile_and_run_with(&wf, &catalog, &par(parallelism));
                let p = parallel.expect("parallel run after serial success");
                prop_assert_eq!(
                    d, &p.result,
                    "parallel divergence at {}\n{}", parallelism, wf.explain()
                );
            }
            // Both paths must agree on rejection too.
            (Err(_), Err(_)) => {}
            _ => prop_assert!(
                false,
                "one path errored: interpreter {:?}, plan {:?}\n{}",
                direct.as_ref().err(),
                serial.as_ref().err(),
                wf.explain()
            ),
        }
    }

    /// Linting is total: every random workflow either lints clean (no
    /// errors) and compiles, or yields a structured E-coded diagnostic —
    /// never a panic. Lint verdict and compile outcome must agree.
    #[test]
    fn lint_is_total_and_agrees_with_compile(
        users in proptest::collection::vec(0i64..7, 0..16),
        ratings in proptest::collection::vec((0i64..20, 0i64..6, 0i64..6), 0..48),
        wf in arb_workflow(),
    ) {
        let db = build_db(&users, &ratings);
        let catalog = db.catalog();
        let report = wf.lint(&catalog);
        let compiled = cr_flexrecs::compile::compile(&wf, &catalog);
        match (report.is_clean(), &compiled) {
            (true, Ok(_)) | (false, Err(_)) => {}
            (clean, _) => prop_assert!(
                false,
                "lint ({}) and compile ({:?}) disagree\n{report}\n{}",
                if clean { "clean" } else { "errors" },
                compiled.as_ref().err(),
                wf.explain()
            ),
        }
        for d in &report.diagnostics {
            prop_assert!(
                d.code.starts_with('E') || d.code.starts_with('W'),
                "malformed diagnostic code {:?}", d.code
            );
        }
    }
}

/// Every built-in strategy template lints clean (warnings allowed, no
/// errors) against a representative campus schema.
#[test]
fn builtin_templates_lint_clean() {
    use cr_flexrecs::templates::{self, SchemaMap};
    let db = {
        let d = cr_relation::Database::new();
        d.execute_sql(
            "CREATE TABLE Courses (CourseID INT PRIMARY KEY, Title TEXT, DepID INT, Year INT)",
        )
        .unwrap();
        d.execute_sql("CREATE TABLE Students (SuID INT PRIMARY KEY, Name TEXT)")
            .unwrap();
        d.execute_sql(
            "CREATE TABLE Comments (SuID INT, CourseID INT, Rating FLOAT, \
             PRIMARY KEY (SuID, CourseID))",
        )
        .unwrap();
        d
    };
    let m = SchemaMap::default();
    let wfs = vec![
        templates::related_courses(&m, "Databases", None, 5),
        templates::user_cf(&m, 1, 5, 5, 1, true),
        templates::user_cf_weighted(&m, 1, 5, 5, 1),
        templates::similar_students_by_courses(&m, 1, 5),
        templates::item_item_cf(&m, 1, 5),
        templates::item_item_cf_ratings(&m, 1, 5),
        templates::major_recommendation(&m, 1, 5, 1),
    ];
    for wf in wfs {
        let report = wf.lint(&db.catalog());
        assert!(report.is_clean(), "{report}");
    }
}

/// The plan path rejects joins on nested attributes (the interpreter's
/// silent-skip is the one intentional divergence, surfaced as an error).
#[test]
fn join_on_nested_attribute_is_rejected_not_miscompiled() {
    let db = build_db(&[1, 2, 3], &[(1, 1, 3), (2, 2, 4)]);
    let wf = Workflow::new(
        "bad-join",
        Node::Join {
            left: Box::new(Node::Extend {
                input: Box::new(src("Users")),
                related_table: "Ratings".to_owned(),
                fk_column: "UId".to_owned(),
                local_key: "UId".to_owned(),
                key_column: "IId".to_owned(),
                rating_column: None,
                as_name: "R".to_owned(),
            }),
            right: Box::new(src("Items")),
            left_col: "R".to_owned(),
            right_col: "IId".to_owned(),
        },
    );
    assert!(compile_and_run(&wf, &db.catalog()).is_err());
}
