//! Plan-mutation corpus: systematically corrupt well-formed plans (derived
//! from the golden strategy templates of `plan_snapshots.rs` plus
//! hand-built ones) and assert the validator flags every corruption with
//! the *right* diagnostic code. This is the validator's own test of
//! coverage: a corruption that slips through here would reach the executor
//! as a wrong answer or a panic.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::unwrap_used)]

use cr_datagen::ScaleConfig;
use cr_flexrecs::templates::{self, SchemaMap};
use cr_relation::plan::validate::{self, ValidationReport};
use cr_relation::plan::{JoinKind, LogicalPlan, RecMethod, RecSpec};
use cr_relation::schema::{Column, DataType, Schema};
use cr_relation::value::Value;
use cr_relation::{Database, Expr, PlanBuilder};

fn campus() -> Database {
    let (db, _) = cr_datagen::generate(&ScaleConfig::tiny()).unwrap();
    db.database().clone()
}

/// Compile a strategy template to its (unoptimized, known-valid) plan.
fn user_cf_plan(db: &Database) -> LogicalPlan {
    let wf = templates::user_cf(&SchemaMap::default(), 444, 10, 20, 2, true);
    cr_flexrecs::compile::compile(&wf, &db.catalog()).unwrap()
}

/// Drop the last column from a schema.
fn drop_last(schema: &Schema) -> Schema {
    let mut cols = schema.columns().to_vec();
    cols.pop();
    Schema::new(cols)
}

/// Retype one column of a schema.
fn retype(schema: &Schema, i: usize, dt: DataType) -> Schema {
    let mut cols = schema.columns().to_vec();
    cols[i].data_type = dt;
    Schema::new(cols)
}

fn assert_flags(report: &ValidationReport, code: &str) {
    assert!(report.has_code(code), "expected {code}, got: {report}");
}

#[test]
fn baseline_template_plan_is_valid() {
    let db = campus();
    let plan = user_cf_plan(&db);
    let report = validate::validate_against(&plan, &db.catalog());
    assert!(report.is_empty(), "{report}");
}

// --- E001: column reference out of range ----------------------------------

#[test]
fn mutation_filter_column_out_of_range() {
    let db = campus();
    let scan = PlanBuilder::scan(&db.catalog(), "Students")
        .unwrap()
        .build();
    let bad = LogicalPlan::Filter {
        input: Box::new(scan),
        predicate: Expr::col_idx(99).eq(Expr::lit(1i64)),
    };
    assert_flags(&validate::validate(&bad), "E001");
}

#[test]
fn mutation_extend_key_out_of_range() {
    let db = campus();
    let plan = user_cf_plan(&db);
    // The comparator side of the outer Recommend is the inner Recommend,
    // whose target is the ε-Extend — point its key at a ghost column.
    let bad = map_first_extend(plan, |mut e| {
        if let LogicalPlan::Extend { key_col, .. } = &mut e {
            *key_col = 99;
        }
        e
    });
    assert_flags(&validate::validate(&bad), "E001");
}

// --- E002: unbound column name --------------------------------------------

#[test]
fn mutation_unbound_name_in_predicate() {
    let db = campus();
    let scan = PlanBuilder::scan(&db.catalog(), "Students")
        .unwrap()
        .build();
    let bad = LogicalPlan::Filter {
        input: Box::new(scan),
        predicate: Expr::col("no_such_column").eq(Expr::lit(1i64)),
    };
    assert_flags(&validate::validate(&bad), "E002");
}

// --- E003: retyped predicate ----------------------------------------------

#[test]
fn mutation_nonboolean_predicate() {
    let db = campus();
    let scan = PlanBuilder::scan(&db.catalog(), "Students")
        .unwrap()
        .build();
    // A bare Int column where a boolean belongs.
    let bad = LogicalPlan::Filter {
        input: Box::new(scan),
        predicate: Expr::col_idx(0),
    };
    assert_flags(&validate::validate(&bad), "E003");
}

// --- E004: schema arity drift ---------------------------------------------

#[test]
fn mutation_dropped_output_column() {
    let db = campus();
    let plan = user_cf_plan(&db);
    let bad = match plan {
        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            schema,
        } => LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            schema: drop_last(&schema),
        },
        other => panic!("expected Recommend root, got {}", other.explain()),
    };
    assert_flags(&validate::validate(&bad), "E004");
}

// --- E005: schema type drift ----------------------------------------------

#[test]
fn mutation_retyped_join_output() {
    let db = campus();
    let c = db.catalog();
    let left = PlanBuilder::scan(&c, "Students").unwrap();
    let right = PlanBuilder::scan(&c, "Courses").unwrap();
    let plan = left
        .join_on(right, JoinKind::Inner, "Students.SuID", "Courses.CourseID")
        .unwrap()
        .build();
    let bad = match plan {
        LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema,
        } => LogicalPlan::Join {
            left,
            right,
            kind,
            on,
            schema: retype(&schema, 0, DataType::Text),
        },
        other => panic!("expected Join, got {}", other.explain()),
    };
    assert_flags(&validate::validate(&bad), "E005");
}

// --- E006: join key swapped onto a nested column --------------------------

#[test]
fn mutation_join_on_nested_column() {
    let db = campus();
    let plan = user_cf_plan(&db);
    // Steal the valid ε-Extend from the template plan and join its output
    // (which ends in a Ratings column) against a plain scan, keyed on the
    // nested column.
    let ext = extract_first_extend(&plan).expect("template plan contains an Extend");
    let nested_idx = ext.schema().len() - 1;
    let right = PlanBuilder::scan(&db.catalog(), "Courses").unwrap().build();
    let schema = ext.schema().join(right.schema());
    let bad = LogicalPlan::Join {
        left: Box::new(ext.clone()),
        right: Box::new(right),
        kind: JoinKind::Inner,
        on: Expr::col_idx(nested_idx).eq(Expr::col_idx(nested_idx + 1)),
        schema,
    };
    assert_flags(&validate::validate(&bad), "E006");
}

// --- E007: orphaned Extend (related side wrong arity) ---------------------

#[test]
fn mutation_extend_related_arity() {
    let db = campus();
    let plan = user_cf_plan(&db);
    let bad = map_first_extend(plan, |mut e| {
        if let LogicalPlan::Extend { related, .. } = &mut e {
            // Narrow the related side to a single column.
            let narrowed = match (**related).clone() {
                LogicalPlan::Scan {
                    table,
                    alias,
                    projection: Some(p),
                    filter,
                    schema,
                } => LogicalPlan::Scan {
                    table,
                    alias,
                    projection: Some(p[..1].to_vec()),
                    filter,
                    schema: Schema::new(schema.columns()[..1].to_vec()),
                },
                other => panic!("expected projected Scan, got {}", other.explain()),
            };
            **related = narrowed;
        }
        e
    });
    assert_flags(&validate::validate(&bad), "E007");
}

// --- E008: extend key not scalar ------------------------------------------

#[test]
fn mutation_extend_key_nested() {
    let db = campus();
    let plan = user_cf_plan(&db);
    let ext = extract_first_extend(&plan).expect("template plan contains an Extend");
    let nested_idx = ext.schema().len() - 1;
    // Extend the already-extended input again, keyed on its nested column.
    let mut schema = ext.schema().clone();
    schema = {
        let mut cols = schema.columns().to_vec();
        cols.push(Column::new("again", DataType::Ratings));
        Schema::new(cols)
    };
    let related = extract_first_related(&plan).expect("template plan contains a related side");
    let bad = LogicalPlan::Extend {
        input: Box::new(ext.clone()),
        related: Box::new(related),
        key_col: nested_idx,
        rating: true,
        as_name: "again".into(),
        schema,
    };
    assert_flags(&validate::validate(&bad), "E008");
}

// --- E009: extend output column retyped -----------------------------------

#[test]
fn mutation_extend_output_retyped() {
    let db = campus();
    let plan = user_cf_plan(&db);
    let bad = map_first_extend(plan, |mut e| {
        if let LogicalPlan::Extend { schema, .. } = &mut e {
            *schema = retype(schema, schema.len() - 1, DataType::Int);
        }
        e
    });
    assert_flags(&validate::validate(&bad), "E009");
}

// --- E010: recommend spec column out of range -----------------------------

#[test]
fn mutation_recommend_spec_out_of_range() {
    let db = campus();
    let plan = user_cf_plan(&db);
    let bad = match plan {
        LogicalPlan::Recommend {
            target,
            comparator,
            mut spec,
            schema,
        } => {
            spec.target_col = 42;
            LogicalPlan::Recommend {
                target,
                comparator,
                spec,
                schema,
            }
        }
        other => panic!("expected Recommend root, got {}", other.explain()),
    };
    assert_flags(&validate::validate(&bad), "E010");
}

// --- E011: recommend method type discipline -------------------------------

#[test]
fn mutation_recommend_method_swapped() {
    let db = campus();
    let plan = user_cf_plan(&db);
    // The inner recommend compares Ratings ~ Ratings; force a Set method.
    let bad = map_first_inner_recommend(plan, |mut spec: RecSpec| {
        spec.method = RecMethod::Set(cr_relation::similarity::SetSim::Jaccard);
        spec
    });
    assert_flags(&validate::validate(&bad), "E011");
}

// --- E012: recommend score column corrupted -------------------------------

#[test]
fn mutation_recommend_score_retyped() {
    let db = campus();
    let plan = user_cf_plan(&db);
    let bad = match plan {
        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            schema,
        } => {
            let last = schema.len() - 1;
            LogicalPlan::Recommend {
                target,
                comparator,
                spec,
                schema: retype(&schema, last, DataType::Int),
            }
        }
        other => panic!("expected Recommend root, got {}", other.explain()),
    };
    assert_flags(&validate::validate(&bad), "E012");
}

// --- E013: union arms drift apart -----------------------------------------

#[test]
fn mutation_union_mismatch() {
    let db = campus();
    let c = db.catalog();
    let left = PlanBuilder::scan(&c, "Students").unwrap().build();
    let right = PlanBuilder::scan(&c, "Courses").unwrap().build();
    let bad = LogicalPlan::Union {
        left: Box::new(left),
        right: Box::new(right),
    };
    assert_flags(&validate::validate(&bad), "E013");
}

// --- E014: scan projection out of range (catalog mode) --------------------

#[test]
fn mutation_scan_projection_out_of_range() {
    let db = campus();
    let c = db.catalog();
    let full = c.table_schema("Students").unwrap();
    let bad = LogicalPlan::Scan {
        table: "Students".into(),
        alias: None,
        projection: Some(vec![0, 99]),
        filter: None,
        schema: Schema::new(vec![
            full.columns()[0].clone(),
            Column::new("ghost", DataType::Int),
        ]),
    };
    assert_flags(&validate::validate_against(&bad, &c), "E014");
}

// --- E015: values row arity -----------------------------------------------

#[test]
fn mutation_values_row_arity() {
    let bad = LogicalPlan::Values {
        schema: Schema::new(vec![Column::new("x", DataType::Int)]),
        rows: vec![vec![Value::Int(1), Value::Int(2)]],
    };
    assert_flags(&validate::validate(&bad), "E015");
}

// --- E016: unknown table (catalog mode) -----------------------------------

#[test]
fn mutation_scan_unknown_table() {
    let db = campus();
    let bad = LogicalPlan::Scan {
        table: "NoSuchTable".into(),
        alias: None,
        projection: None,
        filter: None,
        schema: Schema::default(),
    };
    assert_flags(&validate::validate_against(&bad, &db.catalog()), "E016");
}

// --- corruption coverage --------------------------------------------------

#[test]
fn corpus_covers_at_least_ten_distinct_codes() {
    // Every distinct code exercised above; keep this list in sync so the
    // acceptance bar (>= 10 distinct seeded corruptions) stays visible.
    let covered = [
        "E001", "E002", "E003", "E004", "E005", "E006", "E007", "E008", "E009", "E010", "E011",
        "E012", "E013", "E014", "E015", "E016",
    ];
    assert!(covered.len() >= 10);
    let table: Vec<&str> = validate::code_table().iter().map(|(c, _)| *c).collect();
    for code in covered {
        assert!(table.contains(&code), "{code} missing from code_table()");
    }
}

// --- PR10: policy-violation corpus (P-codes from the flow analysis) --------
//
// Same spirit as the structural mutations above, but for *disclosure*:
// each plan is well-formed, yet leaks labeled data for the given
// principal. Every stable P-code must be produced by at least one plan
// here, including the implicit-flow case and the k-threshold boundary.

mod policy {
    use super::*;
    use cr_relation::plan::flow::{self, Principal};

    fn flow_check(db: &Database, sql: &str, p: &Principal) -> ValidationReport {
        let plan = cr_relation::sql::plan_query(sql, &db.catalog()).unwrap();
        flow::check_disclosure(&plan, &db.catalog(), p)
    }

    fn student() -> Principal {
        Principal::Student(Some(2))
    }

    #[test]
    fn p001_direct_grade_scan() {
        let db = campus();
        let r = flow_check(&db, "SELECT SuID, Grade FROM Enrollments", &student());
        assert_flags(&r, "P001");
        // Same plan, full clearance: clean.
        let r = flow_check(
            &db,
            "SELECT SuID, Grade FROM Enrollments",
            &Principal::Staff,
        );
        assert!(r.is_empty(), "{r}");
    }

    #[test]
    fn p001_handbuilt_gpa_projection() {
        // Not via SQL: a hand-built Project exposing the per-user GPA.
        let db = campus();
        let plan = PlanBuilder::scan(&db.catalog(), "Students")
            .unwrap()
            .select_columns(&["Name", "GPA"])
            .unwrap()
            .build();
        let r = flow::check_disclosure(&plan, &db.catalog(), &student());
        assert_flags(&r, "P001");
    }

    #[test]
    fn p002_implicit_flow_via_grade_predicate() {
        // Output is only community data, but *which rows* depends on a
        // per-user grade — the implicit-flow case.
        let db = campus();
        let r = flow_check(
            &db,
            "SELECT SuID FROM Enrollments WHERE Grade = 'A'",
            &student(),
        );
        assert_flags(&r, "P002");
        assert!(
            !r.has_code("P001"),
            "direct and implicit must not blur: {r}"
        );
    }

    #[test]
    fn p003_k_threshold_boundary() {
        let db = campus();
        let having = |k: i64| {
            format!(
                "SELECT Grade, COUNT(DISTINCT SuID) AS n FROM Enrollments \
                 GROUP BY Grade HAVING COUNT(DISTINCT SuID) >= {k}"
            )
        };
        // Below k=5: denied.
        let below = flow_check(&db, &having(4), &student());
        assert_flags(&below, "P003");
        // At the threshold: the guard proves group size; clean.
        let at = flow_check(&db, &having(5), &student());
        assert!(at.is_empty(), "{at}");
        // Above: clean a fortiori.
        let above = flow_check(&db, &having(6), &student());
        assert!(above.is_empty(), "{above}");
        // No guard at all: denied.
        let none = flow_check(
            &db,
            "SELECT Grade, COUNT(DISTINCT SuID) AS n FROM Enrollments GROUP BY Grade",
            &student(),
        );
        assert_flags(&none, "P003");
    }

    #[test]
    fn p004_optout_gate_bypass() {
        let db = campus();
        let bypass = "SELECT e.SuID, e.CourseID FROM Enrollments e WHERE e.Status = 'planned'";
        let r = flow_check(&db, bypass, &student());
        assert_flags(&r, "P004");
        // Guarding on the sharing gate declassifies for students...
        let gated = "SELECT e.SuID, e.CourseID FROM Enrollments e \
                     JOIN Students s ON e.SuID = s.SuID \
                     WHERE s.SharePlans = TRUE AND e.Status = 'planned'";
        let r = flow_check(&db, gated, &student());
        assert!(!r.has_errors(), "{r}");
        // ...but never for faculty (the paper's role matrix).
        let r = flow_check(&db, gated, &Principal::Faculty);
        assert_flags(&r, "P004");
    }

    #[test]
    fn p005_restricted_telemetry_scan() {
        let db = campus();
        for table in ["cr_stat_slow_queries", "cr_stat_traces"] {
            let sql = format!("SELECT * FROM {table}");
            let r = flow_check(&db, &sql, &student());
            assert_flags(&r, "P005");
            let r = flow_check(&db, &sql, &Principal::Staff);
            assert!(r.is_empty(), "{table}: {r}");
        }
    }

    #[test]
    fn p101_weak_guard_warns_without_denying() {
        // COUNT(*) bounds rows, not distinct owners — enough to
        // declassify, weak enough to warn about.
        let db = campus();
        let r = flow_check(
            &db,
            "SELECT Grade, COUNT(*) AS n FROM Enrollments \
             GROUP BY Grade HAVING COUNT(*) >= 5",
            &student(),
        );
        assert!(!r.has_errors(), "{r}");
        assert_flags(&r, "P101");
    }

    #[test]
    fn self_access_is_clean() {
        let db = campus();
        let r = flow_check(
            &db,
            "SELECT CourseID, Grade FROM Enrollments WHERE SuID = 2",
            &student(),
        );
        assert!(r.is_empty(), "{r}");
        // The same rows under someone else's id: denied.
        let r = flow_check(
            &db,
            "SELECT CourseID, Grade FROM Enrollments WHERE SuID = 3",
            &student(),
        );
        assert!(r.has_errors(), "{r}");
    }

    #[test]
    fn corpus_covers_every_p_code() {
        // Every code the analysis can emit is exercised by a test above;
        // keep this list in sync with `flow::flow_code_table`.
        let covered = ["P001", "P002", "P003", "P004", "P005", "P101"];
        let table: Vec<&str> = flow::flow_code_table().iter().map(|(c, _)| *c).collect();
        assert_eq!(covered.len(), table.len());
        for code in covered {
            assert!(table.contains(&code), "{code} missing from flow_code_table");
        }
    }
}

// --- helpers ---------------------------------------------------------------

/// Apply `f` to the first Extend node found (preorder), rebuilding the
/// tree.
fn map_first_extend(plan: LogicalPlan, f: impl Fn(LogicalPlan) -> LogicalPlan) -> LogicalPlan {
    fn go(
        plan: LogicalPlan,
        done: &mut bool,
        f: &dyn Fn(LogicalPlan) -> LogicalPlan,
    ) -> LogicalPlan {
        if *done {
            return plan;
        }
        if matches!(plan, LogicalPlan::Extend { .. }) {
            *done = true;
            return f(plan);
        }
        match plan {
            LogicalPlan::Recommend {
                target,
                comparator,
                spec,
                schema,
            } => LogicalPlan::Recommend {
                target: Box::new(go(*target, done, f)),
                comparator: Box::new(go(*comparator, done, f)),
                spec,
                schema,
            },
            LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
                input: Box::new(go(*input, done, f)),
                predicate,
            },
            other => other,
        }
    }
    let mut done = false;
    go(plan, &mut done, &f)
}

/// Find the first Extend node (preorder).
fn extract_first_extend(plan: &LogicalPlan) -> Option<LogicalPlan> {
    match plan {
        LogicalPlan::Extend { .. } => Some(plan.clone()),
        LogicalPlan::Recommend {
            target, comparator, ..
        } => extract_first_extend(target).or_else(|| extract_first_extend(comparator)),
        LogicalPlan::Filter { input, .. } => extract_first_extend(input),
        _ => None,
    }
}

/// Find the related side of the first Extend node.
fn extract_first_related(plan: &LogicalPlan) -> Option<LogicalPlan> {
    match extract_first_extend(plan)? {
        LogicalPlan::Extend { related, .. } => Some(*related),
        _ => None,
    }
}

/// Apply `f` to the spec of the first *nested* Recommend (the comparator
/// side of the root).
fn map_first_inner_recommend(plan: LogicalPlan, f: impl Fn(RecSpec) -> RecSpec) -> LogicalPlan {
    match plan {
        LogicalPlan::Recommend {
            target,
            comparator,
            spec,
            schema,
        } => {
            let comparator = match *comparator {
                LogicalPlan::Recommend {
                    target: t2,
                    comparator: c2,
                    spec: s2,
                    schema: sch2,
                } => LogicalPlan::Recommend {
                    target: t2,
                    comparator: c2,
                    spec: f(s2),
                    schema: sch2,
                },
                other => panic!("expected nested Recommend, got {}", other.explain()),
            };
            LogicalPlan::Recommend {
                target,
                comparator: Box::new(comparator),
                spec,
                schema,
            }
        }
        other => panic!("expected Recommend root, got {}", other.explain()),
    }
}
