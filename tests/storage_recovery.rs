//! PR3 crash-recovery properties.
//!
//! The durability contract: for **any** mutation sequence and **any**
//! crash point (measured in persisted bytes, so crashes land mid-frame,
//! mid-snapshot, mid-anything), the recovered state equals the state
//! after some *prefix* of the applied mutations — never a torn mix, and
//! never an invented row. On top of the raw engine property, the
//! CourseRank end-to-end test checks that a recovered instance is
//! indistinguishable from a fresh assemble over the same prefix: tables
//! (including physical row ids), search hits, and recommendations all
//! match, and `storage.replay.*` metrics land in `metrics_snapshot()`.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use courserank::db::{Comment, Course, CourseRankDb, Student};
use courserank::model::{Quarter, Term};
use courserank::CourseRank;
use cr_relation::row::{Row, RowId};
use cr_storage::{FaultyBackend, MemBackend, Storage, StorageConfig};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Engine-level property: arbitrary ops × arbitrary crash byte
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert(i64, i64),
    /// Update the value of the n-th live key (modulo), if any.
    Update(usize, i64),
    /// Delete the n-th live key (modulo), if any.
    Delete(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..50, -100i64..100).prop_map(|(k, v)| Op::Insert(k, v)),
        (0usize..8, -100i64..100).prop_map(|(n, v)| Op::Update(n, v)),
        (0usize..8).prop_map(Op::Delete),
    ]
}

/// Table contents as `(rid, id, v)` triples — physical row ids included
/// so a "prefix" must match byte-for-byte, not just set-wise. `None`
/// means the table does not exist (crash before its DDL survived).
type TableState = Option<Vec<(u64, i64, i64)>>;

fn observe(db: &cr_relation::Database) -> TableState {
    if !db.catalog().has_table("t") {
        return None;
    }
    Some(
        db.catalog()
            .with_table("t", |t| {
                t.scan()
                    .map(|(rid, r)| (rid.0, r[0].as_int().unwrap(), r[1].as_int().unwrap()))
                    .collect()
            })
            .unwrap(),
    )
}

/// Run the op sequence against a durable database, checkpointing after
/// op `checkpoint_at` (if in range). Records the observable state after
/// the DDL and after every op. Mutation failures (duplicate keys, …)
/// and checkpoint failures (crash mid-snapshot) are allowed — the state
/// timeline simply doesn't advance for them.
fn run_ops(
    backend: Arc<dyn cr_storage::StorageBackend>,
    ops: &[Op],
    checkpoint_at: usize,
) -> Vec<TableState> {
    let mut states = vec![None]; // before any DDL
    let Ok((storage, db, _)) = Storage::open(backend, StorageConfig::default()) else {
        return states;
    };
    if db
        .execute_sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        .is_err()
    {
        return states;
    }
    states.push(observe(&db));
    let mut keys: Vec<i64> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Op::Insert(k, v) => {
                if db
                    .execute_sql(&format!("INSERT INTO t VALUES ({k}, {v})"))
                    .is_ok()
                {
                    keys.push(*k);
                }
            }
            Op::Update(n, v) => {
                if let Some(k) = pick(&keys, *n) {
                    let _ = db.execute_sql(&format!("UPDATE t SET v = {v} WHERE id = {k}"));
                }
            }
            Op::Delete(n) => {
                if let Some(k) = pick(&keys, *n) {
                    let _ = db.execute_sql(&format!("DELETE FROM t WHERE id = {k}"));
                    keys.retain(|x| x != &k);
                }
            }
        }
        states.push(observe(&db));
        if i == checkpoint_at {
            let _ = storage.checkpoint();
        }
    }
    states
}

fn pick(keys: &[i64], n: usize) -> Option<i64> {
    if keys.is_empty() {
        None
    } else {
        Some(keys[n % keys.len()])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn any_crash_point_recovers_a_prefix(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        checkpoint_at in 0usize..50,
        cut_points in proptest::collection::vec(0.0f64..1.0, 3),
    ) {
        // Baseline: same ops, no fault. Timeline of every prefix state.
        let baseline = MemBackend::new();
        let states = run_ops(Arc::new(baseline.clone()), &ops, checkpoint_at);
        let total = baseline.total_bytes();

        // Sanity: full recovery lands on the final state.
        let (_, recovered_db, _) =
            Storage::open(Arc::new(baseline.clone()), StorageConfig::default()).unwrap();
        prop_assert_eq!(&observe(&recovered_db), states.last().unwrap());

        for cut in cut_points {
            let budget = (cut * total as f64) as u64;
            // Deterministic re-run: identical byte stream, cut short.
            let faulty = Arc::new(FaultyBackend::crash_after_bytes(budget));
            run_ops(faulty.clone(), &ops, checkpoint_at);
            let (_, db, report) =
                Storage::open(Arc::new(faulty.surviving()), StorageConfig::default()).unwrap();
            let got = observe(&db);
            prop_assert!(
                states.contains(&got),
                "crash at byte {budget}/{total}: recovered state {got:?} \
                 is not any prefix state (report {report:?})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// CourseRank end-to-end: populate → crash mid-WAL → recover → compare
// ---------------------------------------------------------------------

/// The post-checkpoint mutation tail, in WAL order.
#[derive(Debug, Clone)]
enum CampusOp {
    Course(Course),
    Comment(Comment),
}

fn base_campus(db: &CourseRankDb) {
    db.insert_department("CS", "Computer Science", "Engineering")
        .unwrap();
    for (id, name) in [(1, "Sally"), (2, "Bob")] {
        db.insert_student(&Student {
            id,
            name: name.into(),
            class: "2011".into(),
            major: Some("CS".into()),
            gpa: None,
            share_plans: true,
        })
        .unwrap();
    }
}

fn tail_ops() -> Vec<CampusOp> {
    let mut ops = Vec::new();
    let topics = [
        "databases",
        "compilers",
        "graphics",
        "networks",
        "security",
        "robotics",
    ];
    for (i, topic) in topics.iter().enumerate() {
        let id = 101 + i as i64;
        ops.push(CampusOp::Course(Course {
            id,
            dep: "CS".into(),
            title: format!("Introduction to {topic}"),
            description: format!("all about {topic} and more {topic}"),
            units: 3 + (i as i64 % 3),
            url: format!("https://courses.example/{id}"),
        }));
        ops.push(CampusOp::Comment(Comment {
            id: 1 + i as i64,
            student: 1 + (i as i64 % 2),
            course: id,
            quarter: Quarter::new(2008, Term::Autumn),
            text: format!("loved the {topic} assignments"),
            rating: 3.0 + (i as f64 % 2.0),
            date: cr_relation::value::ymd_to_days(2008, 12, 1),
        }));
    }
    ops
}

fn apply(db: &CourseRankDb, op: &CampusOp) {
    match op {
        CampusOp::Course(c) => db.insert_course(c).unwrap(),
        CampusOp::Comment(c) => db.insert_comment(c).unwrap(),
    }
}

fn table_rows(db: &CourseRankDb, table: &str) -> Vec<(RowId, Row)> {
    db.catalog()
        .with_table(table, |t| {
            t.scan().map(|(rid, r)| (rid, r.clone())).collect()
        })
        .unwrap()
}

/// Populate a durable campus: base data, checkpoint, then the op tail.
/// Returns bytes persisted at the checkpoint boundary.
fn populate(backend: Arc<dyn cr_storage::StorageBackend>, probe: &MemBackend) -> u64 {
    let (db, _) = CourseRankDb::open_with_backend(backend, StorageConfig::default()).unwrap();
    base_campus(&db);
    let _ = db.checkpoint();
    let boundary = probe.total_bytes();
    for op in tail_ops() {
        apply(&db, &op);
    }
    boundary
}

#[test]
fn courserank_crash_recovery_end_to_end() {
    cr_obs::install();

    // Baseline run, fully durable.
    let baseline = MemBackend::new();
    let boundary = populate(Arc::new(baseline.clone()), &baseline);
    let total = baseline.total_bytes();
    assert!(total > boundary);
    let ops = tail_ops();

    // Crash at arbitrary byte offsets inside the post-checkpoint WAL
    // tail (the proptest above covers offsets inside the base + snapshot).
    for cut in [0.0, 0.21, 0.5, 0.77, 0.93, 1.0] {
        let budget = boundary + ((total - boundary) as f64 * cut) as u64;
        let faulty = Arc::new(FaultyBackend::crash_after_bytes(budget));
        {
            // Re-runs are deterministic, so the faulty run persists
            // exactly the baseline's first `budget` bytes.
            let (db, _) =
                CourseRankDb::open_with_backend(faulty.clone(), StorageConfig::default()).unwrap();
            base_campus(&db);
            let _ = db.checkpoint();
            for op in &ops {
                apply(&db, op);
            }
        }

        // Recover, then find which prefix of the op tail survived.
        let (recovered, report) =
            CourseRankDb::open_with_backend(Arc::new(faulty.surviving()), StorageConfig::default())
                .unwrap();
        let n_courses = recovered.count("Courses").unwrap() as usize;
        let n_comments = recovered.count("Comments").unwrap() as usize;
        let k = n_courses + n_comments;
        assert!(k <= ops.len(), "recovered more ops than were applied");
        if cut == 1.0 {
            assert_eq!(k, ops.len(), "nothing may be lost without a crash");
        }

        // Rebuild the expected state: fresh in-memory db + the same
        // prefix. Tables must match physically (row ids included).
        let expected = CourseRankDb::new();
        base_campus(&expected);
        for op in &ops[..k] {
            apply(&expected, op);
        }
        for table in ["Courses", "Comments", "Students", "Departments"] {
            assert_eq!(
                table_rows(&recovered, table),
                table_rows(&expected, table),
                "cut={cut}: {table} diverges from the pre-crash prefix"
            );
        }

        // The prefix property itself: op k is exactly the first op whose
        // effect is absent, so prefix rows already matched above; spot
        // check that nothing beyond k leaked in.
        assert_eq!(report.snapshot_seq, Some(0), "checkpointed base restores");

        // Search and recommendations over the recovered instance are
        // identical to a fresh assemble over the same state.
        let app_recovered = CourseRank::assemble(recovered).unwrap();
        let app_expected = CourseRank::assemble(expected).unwrap();
        for query in ["databases", "robotics", "introduction"] {
            let (hits_r, _) = app_recovered.search().search(query, 10).unwrap();
            let (hits_e, _) = app_expected.search().search(query, 10).unwrap();
            assert_eq!(hits_r, hits_e, "cut={cut}: search({query}) diverges");
        }
        {
            use courserank::services::recs::RecOptions;
            let recs_r = app_recovered
                .recs()
                .recommend_courses(1, &RecOptions::default())
                .unwrap();
            let recs_e = app_expected
                .recs()
                .recommend_courses(1, &RecOptions::default())
                .unwrap();
            assert_eq!(recs_r, recs_e, "cut={cut}: recommendations diverge");
        }

        // Replay observability: the storage metrics made it into the
        // app-level snapshot.
        let snap = app_recovered.metrics_snapshot();
        assert!(
            snap.counter("storage.recovery.runs").unwrap_or(0) >= 1,
            "storage.recovery.runs missing from metrics_snapshot()"
        );
        assert!(
            snap.counter("storage.replay.records").is_some(),
            "storage.replay.records missing from metrics_snapshot()"
        );
        assert!(
            snap.counter("storage.wal.appends").unwrap_or(0) >= 1,
            "storage.wal.appends missing from metrics_snapshot()"
        );
    }
}

#[test]
fn bit_rot_in_wal_tail_is_cut_not_applied() {
    // Flip one bit in the WAL tail: recovery must drop the damaged
    // frame and everything after it, keeping the clean prefix.
    let backend = MemBackend::new();
    let (db, _) =
        CourseRankDb::open_with_backend(Arc::new(backend.clone()), StorageConfig::default())
            .unwrap();
    base_campus(&db);
    let ops = tail_ops();
    for op in &ops {
        apply(&db, op);
    }
    drop(db);
    // Corrupt a byte ~70% into the single WAL file.
    let dump = backend.dump();
    let (wal_name, wal_bytes) = dump
        .iter()
        .find(|(name, _)| name.starts_with("wal-"))
        .expect("wal file exists");
    backend.corrupt(wal_name, wal_bytes.len() * 7 / 10, 0x20);

    let (recovered, report) =
        CourseRankDb::open_with_backend(Arc::new(backend.clone()), StorageConfig::default())
            .unwrap();
    assert!(report.truncated_bytes > 0, "corruption must truncate");
    let k = (recovered.count("Courses").unwrap() + recovered.count("Comments").unwrap()) as usize;
    assert!(k < ops.len(), "damaged tail cannot fully survive");
    let expected = CourseRankDb::new();
    base_campus(&expected);
    for op in &ops[..k] {
        apply(&expected, op);
    }
    assert_eq!(
        table_rows(&recovered, "Courses"),
        table_rows(&expected, "Courses")
    );
    assert_eq!(
        table_rows(&recovered, "Comments"),
        table_rows(&expected, "Comments")
    );
}
