//! Differential test for delta-driven cache maintenance.
//!
//! A warm [`Recommender`] (subscribed to the catalog's mutation stream,
//! push-advancing / delta-applying / dropping entries as writes land) is
//! driven through randomized mutation streams — comment inserts, rating
//! updates, comment deletes, enrollments — interleaved with lookups.
//! After every lookup the warm result is compared against a cold
//! recompute from a fresh recommender with empty caches. The two must be
//! *bit-identical* (scores compared via `f64::to_bits`), which is the
//! contract that lets the cache serve maintained entries at all.

// Test code: panicking on a broken fixture is the right behavior.
#![allow(clippy::unwrap_used)]

use courserank::db::{Comment, Course, CourseRankDb, EnrollStatus, Enrollment, Student};
use courserank::model::{Quarter, Term};
use courserank::services::recs::{CourseRec, RecOptions, Recommender, SimilarityBasis};
use proptest::prelude::*;

const STUDENTS: [i64; 5] = [1, 2, 3, 4, 5];
const COURSES: [i64; 5] = [101, 102, 103, 201, 202];

/// A campus rich enough that every strategy has neighbors and ratings to
/// work with (built through the public API — the crate's internal test
/// fixture is not visible to integration tests).
fn campus() -> CourseRankDb {
    let db = CourseRankDb::new();
    db.insert_department("CS", "Computer Science", "Engineering")
        .unwrap();
    db.insert_department("HIST", "History", "Humanities")
        .unwrap();
    for (id, dep, title) in [
        (101, "CS", "Intro Programming"),
        (102, "CS", "Data Structures"),
        (103, "CS", "Operating Systems"),
        (201, "HIST", "Medieval Europe"),
        (202, "HIST", "History of Science"),
    ] {
        db.insert_course(&Course {
            id,
            dep: dep.into(),
            title: title.into(),
            description: "description".into(),
            units: 4,
            url: format!("https://courses.example/{id}"),
        })
        .unwrap();
    }
    for id in STUDENTS {
        db.insert_student(&Student {
            id,
            name: format!("Student {id}"),
            class: "2011".into(),
            major: Some(if id % 2 == 0 { "CS" } else { "HIST" }.into()),
            gpa: None,
            share_plans: true,
        })
        .unwrap();
    }
    // Overlapping transcripts so transcript similarity finds neighbors.
    for (student, course) in [
        (1, 101),
        (1, 102),
        (2, 101),
        (2, 102),
        (2, 103),
        (3, 101),
        (3, 201),
        (4, 201),
        (4, 202),
        (5, 102),
        (5, 202),
    ] {
        db.insert_enrollment(&Enrollment {
            student,
            course,
            quarter: Quarter::new(2008, Term::Autumn),
            grade: None,
            status: EnrollStatus::Taken,
        })
        .unwrap();
    }
    // Seed ratings so the Ratings basis has common ground too.
    for (id, (student, course, rating)) in [
        (1, 101, 4.5),
        (1, 102, 3.0),
        (2, 101, 4.0),
        (2, 103, 5.0),
        (3, 201, 4.5),
        (4, 201, 3.5),
        (4, 202, 4.0),
        (5, 202, 2.5),
    ]
    .into_iter()
    .enumerate()
    {
        db.insert_comment(&Comment {
            id: id as i64 + 1,
            student,
            course,
            quarter: Quarter::new(2008, Term::Autumn),
            text: "seed comment".into(),
            rating,
            date: 0,
        })
        .unwrap();
    }
    db
}

fn assert_bit_identical(warm: &[CourseRec], cold: &[CourseRec], ctx: &str) {
    assert_eq!(warm.len(), cold.len(), "{ctx}: lengths differ");
    for (w, c) in warm.iter().zip(cold) {
        assert_eq!(w.course, c.course, "{ctx}: course order differs");
        assert_eq!(w.title, c.title, "{ctx}: title differs");
        assert_eq!(
            w.score.to_bits(),
            c.score.to_bits(),
            "{ctx}: score bits differ for course {} ({} vs {})",
            w.course,
            w.score,
            c.score
        );
    }
}

/// One lookup on the warm (maintained) recommender, checked against a
/// cold recompute through a fresh recommender over the same live tables.
fn check(warm: &Recommender, db: &CourseRankDb, student: i64, basis: SimilarityBasis) {
    let opts = RecOptions {
        basis,
        min_common: 1,
        ..Default::default()
    };
    let got = warm.recommend_courses(student, &opts).unwrap();
    let cold = Recommender::new(db.clone())
        .recommend_courses(student, &opts)
        .unwrap();
    assert_bit_identical(&got, &cold, &format!("student {student} basis {basis:?}"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn delta_maintained_results_match_cold_recompute(
        ops in proptest::collection::vec(
            (0u8..6, 0usize..5, 0usize..5, 0u8..9), 5..50)
    ) {
        let db = campus();
        let warm = Recommender::new(db.clone());
        let mut next_comment: i64 = 1000;
        let mut live_comments: Vec<i64> = Vec::new();
        let mut quarter_bump = 0i32;
        for (op, si, ci, r) in ops {
            let student = STUDENTS[si];
            let course = COURSES[ci];
            let rating = 1.0 + f64::from(r) * 0.5;
            match op {
                0 => {
                    next_comment += 1;
                    live_comments.push(next_comment);
                    db.insert_comment(&Comment {
                        id: next_comment,
                        student,
                        course,
                        quarter: Quarter::new(2009, Term::Spring),
                        text: "write storm".into(),
                        rating,
                        date: 0,
                    })
                    .unwrap();
                }
                1 => {
                    // Distinct quarters keep the (student, course,
                    // quarter) key fresh; duplicates are simply skipped.
                    quarter_bump += 1;
                    let _ = db.insert_enrollment(&Enrollment {
                        student,
                        course,
                        quarter: Quarter::new(2010 + quarter_bump, Term::Winter),
                        grade: None,
                        status: EnrollStatus::Taken,
                    });
                }
                2 => {
                    // Rating update: an old-image-bearing Update event.
                    if let Some(&id) = live_comments.get(si) {
                        db.database()
                            .execute_sql(&format!(
                                "UPDATE Comments SET Rating = {rating} \
                                 WHERE CommentID = {id}"
                            ))
                            .unwrap();
                    }
                }
                3 => {
                    // Comment delete: a Delete event with an old image.
                    if let Some(pos) = live_comments.iter().position(|&id| id % 5 == i64::from(r) % 5) {
                        let id = live_comments.swap_remove(pos);
                        db.database()
                            .execute_sql(&format!(
                                "DELETE FROM Comments WHERE CommentID = {id}"
                            ))
                            .unwrap();
                    }
                }
                4 => check(&warm, &db, student, SimilarityBasis::CoursesTaken),
                _ => check(&warm, &db, student, SimilarityBasis::Ratings),
            }
        }
        // Final sweep: every student, both cached strategies, after the
        // full mutation stream has been absorbed.
        for student in STUDENTS {
            check(&warm, &db, student, SimilarityBasis::CoursesTaken);
            check(&warm, &db, student, SimilarityBasis::Ratings);
        }
    }
}

/// The deterministic regression companion to the property test: one
/// scripted storm that must exercise all three maintenance outcomes
/// (spared, delta-applied, dropped) and still match cold recomputes.
#[test]
fn scripted_storm_spares_deltas_and_drops() {
    let db = campus();
    let warm = Recommender::new(db.clone());
    let opts = RecOptions {
        basis: SimilarityBasis::CoursesTaken,
        min_common: 1,
        ..Default::default()
    };
    let first = warm.recommend_courses(1, &opts).unwrap();

    // Student 1 is never their own neighbor: their comment is spared.
    db.insert_comment(&Comment {
        id: 900,
        student: 1,
        course: 103,
        quarter: Quarter::new(2009, Term::Spring),
        text: "own comment".into(),
        rating: 5.0,
        date: 0,
    })
    .unwrap();
    let after_spare = warm.recommend_courses(1, &opts).unwrap();
    assert_bit_identical(&after_spare, &first, "spared entry must not change");
    let stats = warm.ct_entry_stats();
    assert!(
        stats.iter().any(|e| e.3 >= 1),
        "expected a spared advance, stats: {stats:?}"
    );

    // Student 2 shares courses with 1 (a neighbor): delta-applied.
    db.insert_comment(&Comment {
        id: 901,
        student: 2,
        course: 103,
        quarter: Quarter::new(2009, Term::Spring),
        text: "neighbor comment".into(),
        rating: 1.0,
        date: 0,
    })
    .unwrap();
    let after_delta = warm.recommend_courses(1, &opts).unwrap();
    let cold = Recommender::new(db.clone())
        .recommend_courses(1, &opts)
        .unwrap();
    assert_bit_identical(&after_delta, &cold, "delta-applied entry");
    let stats = warm.ct_entry_stats();
    assert!(
        stats.iter().any(|e| e.4 >= 1),
        "expected a delta apply, stats: {stats:?}"
    );

    // A new enrollment invalidates (Enrollments is a whole-table dep)
    // and the next lookup recomputes — still identical to cold. The
    // recomputed entry is fresh, so its per-entry counters restart.
    db.insert_enrollment(&Enrollment {
        student: 1,
        course: 202,
        quarter: Quarter::new(2009, Term::Spring),
        grade: None,
        status: EnrollStatus::Taken,
    })
    .unwrap();
    let after_drop = warm.recommend_courses(1, &opts).unwrap();
    let cold = Recommender::new(db.clone())
        .recommend_courses(1, &opts)
        .unwrap();
    assert_bit_identical(&after_drop, &cold, "recomputed-after-drop entry");
    let stats = warm.ct_entry_stats();
    assert!(
        stats.iter().all(|e| e.3 == 0 && e.4 == 0),
        "recomputed entry must start with fresh counters, stats: {stats:?}"
    );
}
